// Package effnetscale's root benchmark harness regenerates every table and
// figure of the paper's evaluation section as Go benchmarks, plus kernel and
// ablation benches for the design choices DESIGN.md calls out.
//
// Artifact map:
//
//	BenchmarkTable1/*   — Table 1 rows (throughput, all-reduce %) via podsim
//	BenchmarkTable2/*   — Table 2 rows (peak top-1) via the convergence model
//	BenchmarkFigure1/*  — Figure 1 points (minutes to peak accuracy)
//	BenchmarkEvalLoop/* — §3.3 ablation: distributed vs Estimator eval
//	BenchmarkDistBN/*   — §3.4 ablation: BN group size, real engine steps
//	BenchmarkBF16/*     — §3.5 ablation: bf16 vs fp32 convolutions
//	BenchmarkKernel/*   — tensor/collective microbenchmarks
//	BenchmarkMiniStep/* — real distributed training step at mini scale
//
// Custom metrics carry the paper's units (img/ms, pct, top1, minutes) so
// `go test -bench . -benchmem` prints the same quantities the tables report.
package effnetscale

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"effnetscale/internal/autograd"
	"effnetscale/internal/bf16"
	"effnetscale/internal/comm"
	"effnetscale/internal/data"
	"effnetscale/internal/efficientnet"
	"effnetscale/internal/metrics"
	"effnetscale/internal/nn"
	"effnetscale/internal/podsim"
	"effnetscale/internal/replica"
	"effnetscale/internal/schedule"
	"effnetscale/internal/serve"
	"effnetscale/internal/telemetry"
	"effnetscale/internal/tensor"
	"effnetscale/internal/topology"
	"effnetscale/internal/train"
)

// --- Table 1 -----------------------------------------------------------------

func BenchmarkTable1(b *testing.B) {
	for _, c := range podsim.Table1Configs() {
		c := c
		b.Run(fmt.Sprintf("%s_%dcores_batch%d", c.Model, c.Cores, c.Batch), func(b *testing.B) {
			var row podsim.StepBreakdown
			for i := 0; i < b.N; i++ {
				var err error
				row, err = podsim.ModelStep(c.Model, c.Cores, c.Batch, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.ThroughputImgPerMs(), "img/ms")
			b.ReportMetric(row.AllReducePct(), "allreduce-pct")
			b.ReportMetric(row.StepSeconds()*1000, "step-ms")
		})
	}
}

// --- Table 2 -----------------------------------------------------------------

func BenchmarkTable2(b *testing.B) {
	for i, row := range podsim.Table2Configs() {
		row := row
		paper := podsim.PaperTable2[i]
		b.Run(fmt.Sprintf("%s_%s_batch%d", row.Model, row.Optimizer, row.GlobalBatch), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				var err error
				acc, err = podsim.PeakAccuracy(podsim.TrainConfig{
					Model: row.Model, Optimizer: row.Optimizer, GlobalBatch: row.GlobalBatch,
					LRPer256: row.LRPer256, Decay: row.Decay, WarmupEpochs: row.WarmupEpochs, Epochs: 350,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(acc, "top1")
			b.ReportMetric(paper, "paper-top1")
		})
	}
}

// --- Figure 1 ----------------------------------------------------------------

func BenchmarkFigure1(b *testing.B) {
	for _, c := range podsim.Figure1Configs() {
		c := c
		b.Run(fmt.Sprintf("%s_%dcores_batch%d", c.Cfg.Model, c.Cores, c.Cfg.GlobalBatch), func(b *testing.B) {
			var pt podsim.Fig1Point
			for i := 0; i < b.N; i++ {
				var err error
				pt, err = podsim.TimeToPeak(c.Cfg, c.Cores, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.MinutesToPeak, "min-to-peak")
			b.ReportMetric(pt.PeakAcc, "top1")
		})
	}
}

// --- §3.3 ablation: evaluation loop -------------------------------------------

func newBenchEngine(b *testing.B, world, perBatch, bnGroup int) *replica.Engine {
	b.Helper()
	ds := data.New(data.MiniConfig(4, 512, 16))
	eng, err := replica.New(replica.Config{
		World:               world,
		PerReplicaBatch:     perBatch,
		Model:               "pico",
		Dataset:             ds,
		OptimizerName:       "sgd",
		Schedule:            schedule.Constant(0.05),
		BNGroupSize:         bnGroup,
		Precision:           bf16.FP32Policy,
		Seed:                1,
		DropoutOverride:     0,
		DropConnectOverride: 0,
		NoAugment:           true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	return eng
}

func BenchmarkEvalLoop(b *testing.B) {
	for _, strategy := range []train.EvalStrategy{train.Distributed{}, train.Estimator{}} {
		strategy := strategy
		b.Run(strategy.Name(), func(b *testing.B) {
			sess, err := train.New(
				train.WithModel("pico"),
				train.WithWorld(4),
				train.WithPerReplicaBatch(4),
				train.WithData(data.MiniConfig(4, 512, 16)),
				train.WithOptimizer("sgd", 0),
				train.WithSchedule(schedule.Constant(0.05)),
				train.WithPrecision(bf16.FP32Policy),
				train.WithSeed(1),
				train.WithoutAugmentation(),
				train.WithEvalEvery(1<<30), // evaluate once, at the end
				train.WithEvalSamples(32),
				train.WithEvalStrategy(strategy),
			)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var serial int
			for i := 0; i < b.N; i++ {
				res, err := sess.Run()
				if err != nil {
					b.Fatal(err)
				}
				serial = res.EvalSerialSamples
			}
			b.ReportMetric(float64(serial), "serial-eval-samples")
		})
	}
}

// --- §3.4 ablation: distributed batch norm -------------------------------------

func BenchmarkDistBN(b *testing.B) {
	for _, group := range []int{1, 2, 4, 8} {
		group := group
		b.Run(fmt.Sprintf("group%d", group), func(b *testing.B) {
			eng := newBenchEngine(b, 8, 2, group)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
		})
	}
	// Modelled pod-scale BN cost, 1-D vs 2-D grouping.
	b.Run("podscale_model", func(b *testing.B) {
		var withBN, withoutBN podsim.StepBreakdown
		for i := 0; i < b.N; i++ {
			var err error
			withBN, err = podsim.ModelStep("b2", 1024, 32768, 64)
			if err != nil {
				b.Fatal(err)
			}
			withoutBN, err = podsim.ModelStep("b2", 1024, 32768, 0)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(withBN.BNSeconds*1e6, "bn-us-per-step")
		b.ReportMetric(100*(withBN.StepSeconds()-withoutBN.StepSeconds())/withoutBN.StepSeconds(), "bn-overhead-pct")
	})
}

// --- §3.5 ablation: mixed precision --------------------------------------------

func BenchmarkBF16(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 1, 4, 8, 16, 16)
	w := tensor.Randn(rng, 0.2, 16, 8, 3, 3)
	spec := tensor.ConvSpec{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	b.Run("conv_fp32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.Conv2D(x, w, spec)
		}
	})
	b.Run("conv_bf16_rounded", func(b *testing.B) {
		xr := tensor.New(x.Shape()...)
		wr := tensor.New(w.Shape()...)
		for i := 0; i < b.N; i++ {
			bf16.RoundSlice(xr.Data(), x.Data())
			bf16.RoundSlice(wr.Data(), w.Data())
			tensor.Conv2D(xr, wr, spec)
		}
	})
	b.Run("round_slice_1M", func(b *testing.B) {
		src := make([]float32, 1<<20)
		dst := make([]float32, 1<<20)
		for i := range src {
			src[i] = rng.Float32()
		}
		b.SetBytes(4 << 20)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bf16.RoundSlice(dst, src)
		}
	})
}

// --- Kernels -------------------------------------------------------------------

func BenchmarkKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	b.Run("matmul_128", func(b *testing.B) {
		x := tensor.Randn(rng, 1, 128, 128)
		y := tensor.Randn(rng, 1, 128, 128)
		b.SetBytes(3 * 128 * 128 * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.MatMul(x, y)
		}
	})
	b.Run("conv2d_32x32", func(b *testing.B) {
		x := tensor.Randn(rng, 1, 8, 16, 32, 32)
		w := tensor.Randn(rng, 0.2, 32, 16, 3, 3)
		spec := tensor.ConvSpec{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.Conv2D(x, w, spec)
		}
	})
	b.Run("depthwise_32x32", func(b *testing.B) {
		x := tensor.Randn(rng, 1, 8, 32, 32, 32)
		w := tensor.Randn(rng, 0.2, 32, 1, 3, 3)
		spec := tensor.ConvSpec{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.DepthwiseConv2D(x, w, spec)
		}
	})
	for _, n := range []int{2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("ring_allreduce_%dranks_1M", n), func(b *testing.B) {
			bufs := make([][]float32, n)
			for r := range bufs {
				bufs[r] = make([]float32, 1<<20/4)
			}
			colls, err := comm.RingProvider().Connect(n)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(1 << 20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runCollective(colls, func(c comm.Collective) { c.AllReduce(bufs[c.Rank()]) })
			}
		})
	}
}

// runCollective drives one collective call on every rank and waits.
func runCollective(colls []comm.Collective, body func(c comm.Collective)) {
	done := make(chan struct{})
	for _, c := range colls {
		go func(c comm.Collective) {
			body(c)
			done <- struct{}{}
		}(c)
	}
	for range colls {
		<-done
	}
}

// --- Collective algorithms and staging-buffer reuse ------------------------------

// BenchmarkCollective compares the all-reduce algorithms behind the
// comm.Collective interface on identical payloads: the flat ring, the
// recursive-doubling tree, and the executable hierarchical 2-D torus.
func BenchmarkCollective(b *testing.B) {
	const n = 8
	slice := topology.Slice{Rows: 2, Cols: 4}
	for _, bench := range []struct {
		name string
		prov comm.Provider
	}{
		{"allreduce_ring_8ranks_1M", comm.RingProvider()},
		{"allreduce_tree_8ranks_1M", comm.TreeProvider()},
		{"allreduce_torus2d_8ranks_1M", comm.Torus2DProvider(slice)},
	} {
		bench := bench
		b.Run(bench.name, func(b *testing.B) {
			colls, err := bench.prov.Connect(n)
			if err != nil {
				b.Fatal(err)
			}
			bufs := make([][]float32, n)
			for r := range bufs {
				bufs[r] = make([]float32, 1<<20/4)
			}
			b.SetBytes(1 << 20)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runCollective(colls, func(c comm.Collective) { c.AllReduce(bufs[c.Rank()]) })
			}
		})
	}

	// Staging-buffer reuse ablation: every ring/tree hop used to allocate a
	// fresh chunk slice, so one 8-rank collective allocated O(n²) buffers.
	// With per-rank staging pools the steady state reuses them. Measured
	// before the pools (same shapes, 8 ranks): AllGather 81 allocs/op and
	// 918 KB/op; RingAllReduce 137 allocs/op and 1.8 MB/op; Broadcast 32
	// allocs/op; ReduceScatter 89 allocs/op. The remaining allocations are
	// the per-op goroutine fan-out, not per-hop buffers.
	b.Run("allgather_8ranks_16K", func(b *testing.B) {
		colls, err := comm.RingProvider().Connect(8)
		if err != nil {
			b.Fatal(err)
		}
		locals := make([][]float32, 8)
		outs := make([][]float32, 8)
		for r := range locals {
			locals[r] = make([]float32, 4096)
			outs[r] = make([]float32, 8*4096)
		}
		b.SetBytes(8 * 4096 * 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runCollective(colls, func(c comm.Collective) { c.AllGather(locals[c.Rank()], outs[c.Rank()]) })
		}
	})
	b.Run("broadcast_8ranks_128K", func(b *testing.B) {
		colls, err := comm.RingProvider().Connect(8)
		if err != nil {
			b.Fatal(err)
		}
		bufs := make([][]float32, 8)
		for r := range bufs {
			bufs[r] = make([]float32, 32768)
		}
		b.SetBytes(32768 * 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runCollective(colls, func(c comm.Collective) { c.Broadcast(bufs[c.Rank()], 0) })
		}
	})
}

// BenchmarkBucketedOverlap measures the real training step under different
// gradient bucket sizes — the executable counterpart of the overlap model's
// BenchmarkOverlapAblation.
func BenchmarkBucketedOverlap(b *testing.B) {
	for _, bucket := range []int{1 << 30, 64 << 10, 8 << 10} {
		bucket := bucket
		name := fmt.Sprintf("bucket%dKiB", bucket>>10)
		if bucket == 1<<30 {
			name = "unbucketed"
		}
		b.Run(name, func(b *testing.B) {
			ds := data.New(data.MiniConfig(4, 512, 16))
			eng, err := replica.New(replica.Config{
				World:           4,
				PerReplicaBatch: 2,
				Model:           "pico",
				Dataset:         ds,
				OptimizerName:   "sgd",
				Schedule:        schedule.Constant(0.05),
				Precision:       bf16.FP32Policy,
				Seed:            1,
				NoAugment:       true,
				GradBucketBytes: bucket,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
			b.ReportMetric(float64(eng.GlobalBatch())*float64(b.N)/b.Elapsed().Seconds(), "img/s")
		})
	}
}

// BenchmarkTopK measures top-1/top-5 scoring over ImageNet-shaped logit
// batches (1000 classes). The rank-counting scan replaced a per-row
// allocate-and-full-sort (~3 allocs and a 1000-element sort per image);
// allocs/op should read 0.
func BenchmarkTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const rows, cols, k = 64, 1000, 5
	logits := make([]float32, rows*cols)
	labels := make([]int, rows)
	for i := range logits {
		logits[i] = rng.Float32()
	}
	for i := range labels {
		labels[i] = rng.Intn(cols)
	}
	b.SetBytes(int64(rows * cols * 4))
	b.ReportAllocs()
	b.ResetTimer()
	var top1, topk int
	for i := 0; i < b.N; i++ {
		top1, topk = metrics.TopK(logits, rows, cols, k, labels)
	}
	b.ReportMetric(float64(top1+topk), "hits") // defeat dead-code elimination
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// --- Input pipeline ---------------------------------------------------------------

// newPrefetchBenchEngine builds the multi-replica mini engine the prefetch
// benchmarks step: augmentation on, because host-side input work is what the
// pipeline exists to hide.
func newPrefetchBenchEngine(b *testing.B, prefetch int) *replica.Engine {
	b.Helper()
	ds := data.New(data.MiniConfig(4, 512, 16))
	eng, err := replica.New(replica.Config{
		World:           4,
		PerReplicaBatch: 4,
		Model:           "pico",
		Dataset:         ds,
		OptimizerName:   "sgd",
		Schedule:        schedule.Constant(0.05),
		Precision:       bf16.FP32Policy,
		Seed:            1,
		NoAugment:       false,
		PrefetchDepth:   prefetch,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	return eng
}

// BenchmarkPrefetch measures real multi-replica training steps with the
// prefetching input pipeline on (batches rendered + augmented on background
// goroutines) versus off (synchronous rendering on the critical path, the
// pre-pipeline behaviour). Both paths produce bit-for-bit identical batches,
// so the throughput delta is pure input-pipeline overlap. The "speedup" case
// interleaves both engines in one timed loop — immune to clock-speed drift
// between sub-benchmarks — and reports prefetch-on vs prefetch-off steps/s
// side by side (≥ 1 speedup expected; ≈ 1 on a single hardware thread, where
// the producers can only fill the scheduling bubbles of the lockstep
// collectives).
func BenchmarkPrefetch(b *testing.B) {
	for _, c := range []struct {
		name     string
		prefetch int
	}{
		{"off", replica.PrefetchOff},
		{"depth2", 2},
		{"depth4", 4},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			eng := newPrefetchBenchEngine(b, c.prefetch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/s")
			b.ReportMetric(float64(eng.GlobalBatch())*float64(b.N)/b.Elapsed().Seconds(), "img/s")
		})
	}
	b.Run("speedup", func(b *testing.B) {
		on := newPrefetchBenchEngine(b, 2)
		off := newPrefetchBenchEngine(b, replica.PrefetchOff)
		for i := 0; i < 3; i++ { // warm both engines and the pipelines
			on.Step()
			off.Step()
		}
		// Alternate short phases rather than single steps, with a settle
		// gap after each prefetched phase: the prefetched engine's
		// producers keep refilling their buffers after Step returns, and
		// without the gap that background rendering would bleed into the
		// inline engine's timed window and inflate tOff.
		const phase = 8
		var tOn, tOff time.Duration
		steps := 0
		b.ResetTimer()
		for steps < b.N {
			k := phase
			if b.N-steps < k {
				k = b.N - steps
			}
			t0 := time.Now()
			for i := 0; i < k; i++ {
				on.Step()
			}
			tOn += time.Since(t0)
			time.Sleep(5 * time.Millisecond) // producers refill off the clock
			t0 = time.Now()
			for i := 0; i < k; i++ {
				off.Step()
			}
			tOff += time.Since(t0)
			steps += k
		}
		b.ReportMetric(float64(steps)/tOn.Seconds(), "prefetch-steps/s")
		b.ReportMetric(float64(steps)/tOff.Seconds(), "inline-steps/s")
		b.ReportMetric(tOff.Seconds()/tOn.Seconds(), "speedup")
	})
}

// BenchmarkRenderThroughput is the rendering microbenchmark behind the
// pipeline sizing: how fast the host can synthesize SynthImageNet batches
// (per-pixel sin/exp/NormFloat64 — the work prefetching hides).
func BenchmarkRenderThroughput(b *testing.B) {
	for _, res := range []int{16, 32} {
		res := res
		b.Run(fmt.Sprintf("fillbatch16_res%d", res), func(b *testing.B) {
			ds := data.New(data.MiniConfig(8, 2048, res))
			shard := data.NewShard(ds, 0, 0, 1)
			batch := tensor.New(16, 3, res, res)
			labels := make([]int, 16)
			b.SetBytes(int64(16 * 3 * res * res * 4))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shard.FillBatch(0, i, batch, labels)
			}
			b.ReportMetric(16*float64(b.N)/b.Elapsed().Seconds(), "img/s")
		})
	}
	b.Run("render_single_res32", func(b *testing.B) {
		ds := data.New(data.MiniConfig(8, 2048, 32))
		dst := make([]float32, 3*32*32)
		b.SetBytes(int64(len(dst) * 4))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ds.Render(0, i%2048, dst)
		}
	})
}

// --- §3.2 ablation: LR schedule choice for LARS ---------------------------------

// BenchmarkScheduleAblation measures, with real mini-scale training, the
// §3.2 finding that polynomial decay beats exponential decay for LARS. The
// reported val-top1 metric carries the outcome.
func BenchmarkScheduleAblation(b *testing.B) {
	for _, decay := range []string{"polynomial", "exponential"} {
		decay := decay
		b.Run("lars_"+decay, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				ds := data.New(data.MiniConfig(8, 2048, 16))
				var sched schedule.Schedule
				const epochs = 4
				if decay == "polynomial" {
					sched = schedule.Warmup{Epochs: 1, Inner: schedule.Polynomial{Peak: 10, End: 0, TotalEpochs: epochs, Power: 2}}
				} else {
					sched = schedule.Warmup{Epochs: 1, Inner: schedule.Exponential{Peak: 10, Rate: 0.97, DecayEpochs: 2.4, Staircase: true}}
				}
				eng, err := replica.New(replica.Config{
					World: 4, PerReplicaBatch: 16, Model: "pico", Dataset: ds,
					OptimizerName: "lars", WeightDecay: 1e-5, Schedule: sched,
					BNGroupSize: 4, Precision: bf16.DefaultPolicy, LabelSmoothing: 0.1,
					Seed: 7, DropoutOverride: 0, DropConnectOverride: 0, BNMomentum: 0.9,
				})
				if err != nil {
					b.Fatal(err)
				}
				for s := 0; s < epochs*eng.StepsPerEpoch(); s++ {
					eng.Step()
				}
				acc, _ = eng.Evaluate(32)
				eng.Close()
			}
			b.ReportMetric(acc, "val-top1")
		})
	}
}

// --- §5 future work: hybrid data+model parallelism --------------------------------

func BenchmarkHybridParallel(b *testing.B) {
	for _, m := range []int{1, 2, 4, 8} {
		m := m
		b.Run(fmt.Sprintf("modelshards%d", m), func(b *testing.B) {
			var row podsim.HybridStep
			batch := podsim.MinGlobalBatch(2048, m)
			for i := 0; i < b.N; i++ {
				var err error
				row, err = podsim.HybridModelStep("b5", 2048, batch, m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batch), "min-batch")
			b.ReportMetric(row.ThroughputImgPerMs(), "img/ms")
			b.ReportMetric(100*row.ActExchangeSeconds/row.StepSeconds(), "act-exchange-pct")
		})
	}
}

// --- Design-choice ablation: all-reduce/backward overlap --------------------------

func BenchmarkOverlapAblation(b *testing.B) {
	for _, model := range []string{"b2", "b5"} {
		model := model
		b.Run(model+"_1024cores", func(b *testing.B) {
			var o, g podsim.OverlapResult
			for i := 0; i < b.N; i++ {
				var err error
				o, err = podsim.ModelStepOverlapped(model, 1024, 32768, 0)
				if err != nil {
					b.Fatal(err)
				}
				g, err = podsim.ModelStepGradReady(model, 1024, 32768, 0, 4<<20)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(o.AllReducePct(), "serialized-allreduce-pct")
			b.ReportMetric(o.SpeedupPct(), "overlap-speedup-pct")
			b.ReportMetric(100*g.OverlapFraction, "gradready-overlap-pct")
		})
	}
}

// --- Telemetry overhead -----------------------------------------------------------

// BenchmarkStep measures the telemetry subsystem's hot-path cost on a real
// multi-replica training step:
//
//	off        — Config.Telemetry nil: the instrumentation is compiled out
//	             (no clock reads, no atomics); the baseline.
//	nosink     — a Recorder with no sinks attached: phase timers run, every
//	             collective is instrumented, StepDone aggregates the summary,
//	             but nothing is emitted. The acceptance bar is <1% overhead
//	             vs off.
//	jsonl      — a JSONL sink writing to io.Discard: the cost of actually
//	             emitting per-step records.
func BenchmarkStep(b *testing.B) {
	for _, c := range []struct {
		name string
		rec  func() *telemetry.Recorder
	}{
		{"off", func() *telemetry.Recorder { return nil }},
		{"nosink", func() *telemetry.Recorder { return telemetry.NewRecorder() }},
		{"jsonl", func() *telemetry.Recorder { return telemetry.NewRecorder(telemetry.NewJSONL(io.Discard)) }},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			ds := data.New(data.MiniConfig(4, 512, 16))
			rec := c.rec()
			eng, err := replica.New(replica.Config{
				World:           4,
				PerReplicaBatch: 4,
				Model:           "pico",
				Dataset:         ds,
				OptimizerName:   "sgd",
				Schedule:        schedule.Constant(0.05),
				// Distributed BN keeps the replica goroutines lockstepped
				// through backward, so the reported overlap metrics measure
				// the grad-ready dispatch rather than scheduler skew on
				// hosts with fewer cores than replicas.
				BNGroupSize: 4,
				Precision:   bf16.FP32Policy,
				Seed:        1,
				NoAugment:   true,
				Telemetry:   rec,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			eng.Step() // warm pipelines and pools off the clock
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
			b.ReportMetric(float64(eng.GlobalBatch())*float64(b.N)/b.Elapsed().Seconds(), "img/s")
			if rec != nil {
				sum := rec.Summary()
				b.ReportMetric(sum.OverlapEfficiency(), "overlap-eff")
				if sum.Steps > 0 {
					b.ReportMetric(sum.Phases[telemetry.PhaseReduceTail].Seconds()*1e3/float64(sum.Steps), "reduce-tail-ms")
				}
			}
		})
	}
}

// --- Inference path ---------------------------------------------------------------

// BenchmarkEvalForward is the before/after for the inference-mode forward
// split: "tape" is what replica.Evaluate used to run (an eval-mode autograd
// forward, paying tape-node and gradient-buffer allocations it never uses),
// "infer" is the tape-free Model.Infer path Evaluate now runs. Both compute
// bit-identical logits (asserted by TestModelInferMatchesEvalForward), so
// the delta is pure bookkeeping cost.
func BenchmarkEvalForward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	cfg, _ := efficientnet.ConfigByName("pico", 4)
	cfg.Resolution = 16
	m := efficientnet.New(rng, cfg)
	const batch = 16
	x := tensor.Randn(rng, 1, batch, 3, 16, 16)
	b.Run("tape", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx := &nn.Ctx{Training: false, Precision: bf16.FP32Policy}
			m.Forward(ctx, autograd.Constant(x))
		}
		b.ReportMetric(batch*float64(b.N)/b.Elapsed().Seconds(), "img/s")
	})
	b.Run("infer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Infer(bf16.FP32Policy, x)
		}
		b.ReportMetric(batch*float64(b.N)/b.Elapsed().Seconds(), "img/s")
	})
}

// BenchmarkBatchedInference drives the serving batcher end to end
// (admission, coalescing, pooled copy, tape-free forward, reply) at batch
// sizes 1/8/32, with a JSONL sink attached so each measured batch flows
// through the same kind-tagged telemetry schema the training sinks emit
// ("serve_batch" lines, minisweep-readable). img/s is the serving
// throughput; avg-batch confirms the coalescing actually happened.
func BenchmarkBatchedInference(b *testing.B) {
	for _, size := range []int{1, 8, 32} {
		size := size
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			cfg, _ := efficientnet.ConfigByName("pico", 4)
			cfg.Resolution = 16
			m := efficientnet.New(rng, cfg)
			bt, err := serve.NewBatcher(serve.Config{
				Provider: serve.Static{M: m, Tag: "bench"},
				MaxBatch: size,
				MaxWait:  500 * time.Microsecond,
				Sinks:    []serve.Sink{serve.NewJSONL(io.Discard)},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer bt.Close()
			px := make([]float32, bt.SampleLen())
			for i := range px {
				px[i] = rng.Float32()
			}
			// Closed-loop clients sized so batches can fill; together they
			// issue exactly b.N requests.
			clients := 2 * size
			var remaining atomic.Int64
			remaining.Store(int64(b.N))
			var wg sync.WaitGroup
			b.ResetTimer()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for remaining.Add(-1) >= 0 {
						if _, err := bt.Predict(px); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "img/s")
			b.ReportMetric(bt.Stats().AvgBatch, "avg-batch")
		})
	}
}

// --- Real distributed step ------------------------------------------------------

func BenchmarkMiniStep(b *testing.B) {
	cases := []struct {
		world, perBatch, bnGroup int
	}{
		{1, 8, 1},
		{4, 2, 1},
		{4, 2, 4},
		{8, 1, 8},
	}
	for _, c := range cases {
		c := c
		b.Run(fmt.Sprintf("world%d_batch%d_bn%d", c.world, c.perBatch, c.bnGroup), func(b *testing.B) {
			eng := newBenchEngine(b, c.world, c.perBatch, c.bnGroup)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
			b.ReportMetric(float64(eng.GlobalBatch())*float64(b.N)/b.Elapsed().Seconds(), "img/s")
		})
	}
}
