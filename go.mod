module effnetscale

go 1.24
