package main

import (
	"fmt"
	"sort"
	"time"

	"effnetscale/internal/bf16"
	"effnetscale/internal/comm"
	"effnetscale/internal/data"
	"effnetscale/internal/mesh"
	"effnetscale/internal/metrics"
	"effnetscale/internal/podsim"
	"effnetscale/internal/replica"
	"effnetscale/internal/schedule"
	"effnetscale/internal/telemetry"
)

// hybridShapes are the D×M cells of the measured-vs-modeled hybrid table.
var hybridShapes = []mesh.Shape{
	{Data: 4, Model: 1},
	{Data: 2, Model: 2},
	{Data: 4, Model: 2},
}

// hybridGlobalBatch is held constant across shapes so every cell trains the
// same batch content: the model axis shards parameters, not data.
const hybridGlobalBatch = 16

// hybridCell is one measured mesh shape: the median step wall time and the
// per-rank per-step collective payload trace the model prices.
type hybridCell struct {
	shape    mesh.Shape
	measured float64
	calls    []podsim.MiniCollective
}

// measureHybridCell runs a real mesh engine for a few steps and returns the
// median step wall time plus one rank's steady-state collective trace.
func measureHybridCell(shape mesh.Shape) (hybridCell, error) {
	const warmup, reps = 2, 5
	log := &telemetry.CollectiveLog{}
	eng, err := replica.New(replica.Config{
		World:           shape.World(),
		Mesh:            shape,
		PerReplicaBatch: hybridGlobalBatch / shape.Data,
		Model:           "pico",
		Dataset:         data.New(data.MiniConfig(4, 256, 16)),
		OptimizerName:   "sgd",
		Schedule:        schedule.Constant(0.05),
		BNGroupSize:     1,
		Precision:       bf16.FP32Policy,
		Seed:            7,
		NoAugment:       true,
		Collective:      comm.InstrumentProvider(comm.RingProvider(), log),
	})
	if err != nil {
		return hybridCell{}, fmt.Errorf("mesh %s: %w", shape, err)
	}
	defer eng.Close()
	for i := 0; i < warmup; i++ {
		eng.Step()
	}
	log.Reset()
	walls := make([]float64, reps)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		eng.Step()
		walls[i] = time.Since(t0).Seconds()
	}
	sort.Float64s(walls)

	// Every rank runs the identical lockstep program, so the full event log
	// is world × reps copies of one rank's per-step trace: regroup by
	// (op, world, bytes) and divide the counts back down.
	type key struct {
		op    comm.Op
		world int
		bytes int
	}
	counts := map[key]int{}
	for _, ev := range log.Events() {
		counts[key{ev.Op, ev.World, ev.Bytes}]++
	}
	cell := hybridCell{shape: shape, measured: walls[len(walls)/2]}
	for k, n := range counts {
		for i := 0; i < n/(shape.World()*reps); i++ {
			cell.calls = append(cell.calls, podsim.MiniCollective{
				AllGather: k.op == comm.OpAllGather,
				Bytes:     k.bytes,
				World:     k.world,
			})
		}
	}
	return cell, nil
}

// printValidateHybrid measures real D×M mesh engine steps at the hybrid
// shapes and prints the per-cell error against podsim's §5 analytic hybrid
// step, calibrated to mini scale: the per-image compute cost comes from the
// measured 4×1 (pure data-parallel) cell, and every collective payload is
// priced with the α-β constants fitted to the measured ring all-reduces
// (fit) — the same constants the plain -validate table reports.
func printValidateHybrid(csv bool, fit comm.LinkParams) error {
	cells := make([]hybridCell, 0, len(hybridShapes))
	for _, shape := range hybridShapes {
		c, err := measureHybridCell(shape)
		if err != nil {
			return err
		}
		cells = append(cells, c)
	}

	// Calibrate the per-image compute cost on the first (4×1) cell: what the
	// measured step spent outside its modelled communication. The 4×1 error
	// is therefore ~0 by construction — it is the calibration point, as the
	// ring cells are for the α-β fit — and the hybrid cells test whether the
	// §5 structure (1/M compute scaling plus exchange terms) predicts the
	// shapes the model never saw.
	base, err := podsim.MiniHybridStep("pico", cells[0].shape.Data, cells[0].shape.Model,
		hybridGlobalBatch, 0, cells[0].calls, fit)
	if err != nil {
		return err
	}
	compute := cells[0].measured - base.StepSeconds()
	if compute < 0 {
		compute = 0
	}
	perImg := compute / float64(hybridGlobalBatch/cells[0].shape.Data)

	t := metrics.NewTable(
		"Measured vs modeled hybrid D×M step (pico, global batch 16; compute calibrated on 4x1)",
		"Mesh", "Replica batch", "Measured (ms)", "Modeled (ms)", "Compute (ms)", "Reduce (ms)", "MP exch (ms)", "Error %")
	for _, c := range cells {
		h, err := podsim.MiniHybridStep("pico", c.shape.Data, c.shape.Model,
			hybridGlobalBatch, perImg, c.calls, fit)
		if err != nil {
			return err
		}
		modeled := h.StepSeconds()
		errPct := 0.0
		if modeled > 0 {
			errPct = 100 * (c.measured - modeled) / modeled
		}
		t.AddRow(c.shape.String(), hybridGlobalBatch/c.shape.Data,
			round2(c.measured*1e3), round2(modeled*1e3),
			round2(h.ComputeSeconds*1e3), round2(h.AllReduceSeconds*1e3),
			round2(h.ActExchangeSeconds*1e3), round2(errPct))
	}
	emit(t, csv)
	return nil
}
