// Command podbench regenerates the paper's evaluation artifacts from the
// pod-scale simulator:
//
//	podbench -artifact table1          # Table 1: throughput and all-reduce share
//	podbench -artifact table2          # Table 2: peak accuracies
//	podbench -artifact figure1         # Figure 1: time to peak accuracy
//	podbench -artifact all             # everything, with paper comparisons
//	podbench -csv                      # machine-readable output
//	podbench -collective ring          # price Table 1 under a flat ring
//	podbench -collective auto          # ... or the cost-model auto choice
//	podbench -validate                 # measured-vs-modeled all-reduce error
//
// The -collective flag takes the same provider names the training engine
// accepts (ring, tree, torus2d, auto), so the algorithm podbench prices and
// the algorithm `train.WithCollective` runs are the same comm.Provider.
package main

import (
	"flag"
	"fmt"
	"os"

	"effnetscale/internal/comm"
	"effnetscale/internal/metrics"
	"effnetscale/internal/podsim"
	"effnetscale/internal/topology"
)

func main() {
	artifact := flag.String("artifact", "all", "which artifact to regenerate: table1, table2, figure1, all")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	collective := flag.String("collective", "torus2d", "collective algorithm for Table 1's all-reduce: ring, tree, torus2d, auto")
	validate := flag.Bool("validate", false, "measure the executable ring/tree/torus2d all-reduces (world 4/8/16) and report measured-vs-modeled error against the α-β cost model")
	flag.Parse()

	if *validate {
		fail(printValidate(*csv))
		return
	}

	// Validate the name early with a throwaway slice; per-row providers are
	// built against each row's actual slice geometry.
	if _, err := comm.ProviderByName(*collective, topology.Slice{}); err != nil {
		fmt.Fprintln(os.Stderr, "podbench:", err)
		os.Exit(2)
	}

	switch *artifact {
	case "table1":
		fail(printTable1(*csv, *collective))
	case "table2":
		fail(printTable2(*csv))
	case "figure1":
		fail(printFigure1(*csv))
	case "all":
		fail(printTable1(*csv, *collective))
		fmt.Println()
		fail(printTable2(*csv))
		fmt.Println()
		fail(printFigure1(*csv))
	default:
		fmt.Fprintf(os.Stderr, "podbench: unknown artifact %q (want table1, table2, figure1, all)\n", *artifact)
		os.Exit(2)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "podbench:", err)
		os.Exit(1)
	}
}

func emit(t *metrics.Table, csv bool) {
	if csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t.String())
	}
}

func printTable1(csv bool, collective string) error {
	rows, err := podsim.Table1With(collective)
	if err != nil {
		return err
	}
	t := metrics.NewTable(
		"Table 1: Communication costs and throughput (modelled vs paper)",
		"Model", "#TPU-v3 cores", "Global batch", "Algorithm", "Throughput (img/ms)", "Paper", "All-Reduce %", "Paper %")
	for i, r := range rows {
		p := podsim.PaperTable1[i]
		t.AddRow("EfficientNet-"+upper(r.Model), r.Cores, r.GlobalBatch, r.Algorithm,
			round2(r.ThroughputImgPerMs), p.ThroughputImgPerMs,
			round2(r.AllReducePct), p.AllReducePct)
	}
	emit(t, csv)
	return nil
}

func printTable2(csv bool) error {
	rows, err := podsim.Table2()
	if err != nil {
		return err
	}
	t := metrics.NewTable(
		"Table 2: Peak top-1 accuracies (modelled vs paper)",
		"Model", "Cores", "Batch", "Optimizer", "LR/256", "Decay", "Warmup (ep)", "Peak acc", "Paper")
	for i, r := range rows {
		t.AddRow("EfficientNet-"+upper(r.Model), r.Cores, r.GlobalBatch, r.Optimizer,
			r.LRPer256, r.Decay, r.WarmupEpochs, round4(r.PeakAcc), podsim.PaperTable2[i])
	}
	emit(t, csv)
	return nil
}

func printFigure1(csv bool) error {
	pts, err := podsim.Figure1()
	if err != nil {
		return err
	}
	t := metrics.NewTable(
		"Figure 1: Training time to peak accuracy vs TPU slice size",
		"Model", "Cores", "Global batch", "Optimizer", "Minutes to peak", "Peak acc")
	for _, p := range pts {
		t.AddRow("EfficientNet-"+upper(p.Model), p.Cores, p.GlobalBatch, p.Optimizer,
			round2(p.MinutesToPeak), round4(p.PeakAcc))
	}
	emit(t, csv)
	fmt.Printf("\nHeadlines: paper B2@1024 = %.0f min to 79.7%%; paper B5@65536 = %.0f min to 83.0%%\n",
		podsim.PaperHeadlines.B2MinutesTo797, podsim.PaperHeadlines.B5MinutesTo830)
	return nil
}

func upper(m string) string {
	if len(m) == 2 {
		return string(m[0]-'a'+'A') + m[1:]
	}
	return m
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }
func round4(v float64) float64 { return float64(int(v*10000+0.5)) / 10000 }
