package main

import (
	"fmt"

	"effnetscale/internal/metrics"
	"effnetscale/internal/telemetry"
)

// printValidate runs the measured-vs-modeled collective validation: the
// executable ring, tree and torus2d all-reduces are timed at world sizes
// 4/8/16 over several payloads via the telemetry instrumentation, the α-β
// cost model's two constants are fitted to the measured ring points, and
// every cell is then re-priced with Provider.ModelAllReduce under the fitted
// constants — the per-cell error is how far the model's structure is from
// the transport the mini-scale training actually runs on.
func printValidate(csv bool) error {
	v, err := telemetry.ValidateCommModel(telemetry.ValidationConfig{})
	if err != nil {
		return err
	}
	t := metrics.NewTable(
		fmt.Sprintf("Measured vs modeled all-reduce (α-β fit to ring: β %.2f GB/s, α %.2f µs)",
			v.Fit.BandwidthGBs, v.Fit.LatencyUS),
		"Provider", "Algorithm", "World", "Payload (KiB)", "Measured (µs)", "Modeled (µs)", "Error %")
	for _, p := range v.Points {
		t.AddRow(p.Provider, p.Algorithm, p.World, p.Bytes>>10,
			round2(p.MeasuredSeconds*1e6), round2(p.ModeledSeconds*1e6), round2(p.ErrorPct))
	}
	emit(t, csv)
	fmt.Println()
	sum := metrics.NewTable("Mean |error| per provider", "Provider", "Mean |err| %")
	for _, name := range []string{"ring", "tree", "torus2d"} {
		if e, ok := v.MeanAbsErrPct[name]; ok {
			sum.AddRow(name, round2(e))
		}
	}
	emit(sum, csv)
	fmt.Println()
	// The hybrid table reuses the fitted constants: the §5 D×M step model
	// priced under the α-β fit above, against real mesh-engine step times.
	return printValidateHybrid(csv, v.Fit)
}
