// Command benchdiff compares `go test -bench` output against a committed
// baseline and fails on performance regressions. It is the CI gate that keeps
// the tensor kernels on the measured critical path from silently slowing
// down or re-growing allocations.
//
// Usage:
//
//	go test -run xxx -bench 'Step|MatMul|Conv' ./... | benchdiff -baseline BENCH_BASELINE.json
//	go test -run xxx -bench 'Step|MatMul|Conv' ./... | benchdiff -baseline BENCH_BASELINE.json -update
//
// Comparison model: CI machines differ in absolute speed from the machine
// that recorded the baseline, so raw ns/op is not comparable. benchdiff
// instead computes each benchmark's ratio current/baseline and normalizes
// by the geometric mean of all ratios — a uniform machine-speed factor
// cancels out, while any benchmark that regressed *relative to the others*
// sticks out. A normalized ratio above the tolerance (default 15%) fails.
// allocs/op needs no normalization and is compared strictly: any increase
// over baseline fails.
//
// The tradeoff is deliberate: a change that slows every benchmark by the
// same factor is invisible to the normalized check (indistinguishable from
// a slower machine). The absolute throughput trend is tracked by the
// img/s numbers in the README table instead.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry is one benchmark's recorded performance.
type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type baseline struct {
	// Note is documentation inside the JSON file, not used by the tool.
	Note       string           `json:"note,omitempty"`
	Tolerance  float64          `json:"tolerance,omitempty"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func main() {
	basePath := flag.String("baseline", "BENCH_BASELINE.json", "path to the baseline file")
	update := flag.Bool("update", false, "rewrite the baseline from the input instead of comparing")
	tol := flag.Float64("tolerance", 0, "normalized ns/op regression tolerance (0 = use baseline's, default 0.15)")
	flag.Parse()

	got, err := parseBench(os.Stdin)
	if err != nil {
		fatalf("parsing bench output: %v", err)
	}
	if len(got) == 0 {
		fatalf("no benchmark lines found on stdin (did the bench run fail?)")
	}

	if *update {
		writeBaseline(*basePath, got, *tol)
		return
	}

	base, err := readBaseline(*basePath)
	if err != nil {
		fatalf("reading baseline: %v", err)
	}
	tolerance := 0.15
	if base.Tolerance > 0 {
		tolerance = base.Tolerance
	}
	if *tol > 0 {
		tolerance = *tol
	}
	if compare(base.Benchmarks, got, tolerance) {
		os.Exit(1)
	}
}

// parseBench extracts benchmark results from `go test -bench` output.
// A line looks like:
//
//	BenchmarkConv/forward3x3  100  487882 ns/op  0 B/op  0 allocs/op
//
// Trailing -N GOMAXPROCS suffixes are stripped so baselines recorded at
// GOMAXPROCS=1 compare against runs from any machine pinned the same way.
func parseBench(r io.Reader) (map[string]entry, error) {
	out := make(map[string]entry)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var e entry
		seen := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				e.NsPerOp = v
				seen = true
			case "allocs/op":
				e.AllocsPerOp = int64(v)
			}
		}
		if seen {
			out[name] = e
		}
	}
	return out, sc.Err()
}

// compare reports whether any regression was found, printing a row per
// benchmark.
func compare(base, got map[string]entry, tolerance float64) (failed bool) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	// Geometric mean of current/baseline ratios over benchmarks present in
	// both sets: the machine-speed factor.
	var logSum float64
	var nRatios int
	for _, name := range names {
		g, ok := got[name]
		if !ok || g.NsPerOp <= 0 || base[name].NsPerOp <= 0 {
			continue
		}
		logSum += math.Log(g.NsPerOp / base[name].NsPerOp)
		nRatios++
	}
	if nRatios == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no baseline benchmarks present in input")
		return true
	}
	speed := math.Exp(logSum / float64(nRatios))
	fmt.Printf("machine speed vs baseline: %.3fx (geomean of %d ratios)\n", speed, nRatios)
	fmt.Printf("%-40s %12s %12s %10s %s\n", "benchmark", "base ns/op", "ns/op", "norm", "allocs")

	for _, name := range names {
		b := base[name]
		g, ok := got[name]
		if !ok {
			fmt.Printf("%-40s MISSING from input\n", name)
			failed = true
			continue
		}
		norm := g.NsPerOp / b.NsPerOp / speed
		status := ""
		if norm > 1+tolerance {
			status = "  REGRESSION"
			failed = true
		}
		allocs := fmt.Sprintf("%d", g.AllocsPerOp)
		if g.AllocsPerOp > b.AllocsPerOp {
			allocs = fmt.Sprintf("%d (base %d)  ALLOC REGRESSION", g.AllocsPerOp, b.AllocsPerOp)
			failed = true
		}
		fmt.Printf("%-40s %12.0f %12.0f %9.3fx %s%s\n", name, b.NsPerOp, g.NsPerOp, norm, allocs, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL (tolerance %.0f%%)\n", tolerance*100)
	} else {
		fmt.Printf("benchdiff: ok (tolerance %.0f%%)\n", tolerance*100)
	}
	return failed
}

func readBaseline(path string) (baseline, error) {
	var b baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	err = json.Unmarshal(data, &b)
	return b, err
}

func writeBaseline(path string, got map[string]entry, tol float64) {
	b := baseline{
		Note:       "Recorded with GOMAXPROCS=1; compared via geomean-normalized ratios (see cmd/benchdiff).",
		Benchmarks: got,
	}
	if tol > 0 {
		b.Tolerance = tol
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fatalf("encoding baseline: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatalf("writing baseline: %v", err)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(got), path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
