// Command synthimg renders SynthImageNet samples to PNG files so the
// procedural dataset can be inspected visually.
//
//	synthimg -classes 4 -per-class 3 -resolution 64 -out /tmp/synth
package main

import (
	"flag"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"
	"path/filepath"

	"effnetscale/internal/data"
)

func main() {
	classes := flag.Int("classes", 4, "number of classes to render")
	perClass := flag.Int("per-class", 3, "images per class")
	resolution := flag.Int("resolution", 64, "image resolution")
	out := flag.String("out", "synth-samples", "output directory")
	seed := flag.Int64("seed", 1, "dataset seed")
	flag.Parse()

	ds := data.New(data.Config{
		NumClasses: *classes,
		TrainSize:  *classes * *perClass * 2,
		ValSize:    *classes,
		Resolution: *resolution,
		NoiseStd:   0.25,
		Seed:       *seed,
	})
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "synthimg:", err)
		os.Exit(1)
	}
	r := *resolution
	buf := make([]float32, 3*r*r)
	for c := 0; c < *classes; c++ {
		for k := 0; k < *perClass; k++ {
			idx := k**classes + c
			label := ds.Render(0, idx, buf)
			img := image.NewRGBA(image.Rect(0, 0, r, r))
			for y := 0; y < r; y++ {
				for x := 0; x < r; x++ {
					img.Set(x, y, color.RGBA{
						R: toByte(buf[0*r*r+y*r+x]),
						G: toByte(buf[1*r*r+y*r+x]),
						B: toByte(buf[2*r*r+y*r+x]),
						A: 255,
					})
				}
			}
			name := filepath.Join(*out, fmt.Sprintf("class%02d_%02d.png", label, k))
			f, err := os.Create(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "synthimg:", err)
				os.Exit(1)
			}
			if err := png.Encode(f, img); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "synthimg:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Println("wrote", name)
		}
	}
}

// toByte maps a roughly [-2, 2] pixel value to 0..255.
func toByte(v float32) uint8 {
	x := (v + 2) / 4 * 255
	if x < 0 {
		x = 0
	}
	if x > 255 {
		x = 255
	}
	return uint8(x)
}
