// Command minisweep runs mini-scale real-training grids over optimizers,
// global batch sizes and BN group sizes, emitting a CSV of final train and
// validation accuracies plus each cell's telemetry columns (training img/s
// and comm-overlap efficiency). It is the tool behind the mini-scale
// validation tables in EXPERIMENTS.md. Each cell of the grid is one
// train.Session run with telemetry attached; -telemetry-jsonl additionally
// streams every cell's per-step records, labelled per cell, into one file.
//
//	minisweep -optimizers lars,rmsprop -batches 64,256,1024 -epochs 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"effnetscale/internal/data"
	"effnetscale/internal/schedule"
	"effnetscale/internal/telemetry"
	"effnetscale/internal/train"
)

func main() {
	var (
		model      = flag.String("model", "pico", "model variant")
		world      = flag.Int("replicas", 4, "replica count")
		optimizers = flag.String("optimizers", "rmsprop,lars", "comma-separated optimizer list")
		batches    = flag.String("batches", "64,256,1024", "comma-separated global batch sizes")
		bnGroups   = flag.String("bn-groups", "", "comma-separated BN group sizes (default: world)")
		shards     = flag.String("model-shards", "1", "comma-separated model-parallel shard counts: each cell lays replicas×shards ranks out as a replicas×shards mesh (1 = pure data parallelism)")
		epochs     = flag.Int("epochs", 5, "epochs per run")
		classes    = flag.Int("classes", 8, "SynthImageNet classes")
		trainSize  = flag.Int("train-size", 4096, "training images")
		resolution = flag.Int("resolution", 16, "image resolution")
		seed       = flag.Int64("seed", 7, "seed")
		larsLR     = flag.Float64("lars-lr", 10, "LARS peak global LR (roughly batch-independent, like the paper)")
		rmsLR      = flag.Float64("rmsprop-lr-per-256", 0.1, "RMSProp LR per 256 samples (linear scaling rule)")
		telJSONL   = flag.String("telemetry-jsonl", "", "append every cell's per-step telemetry records to this JSONL file (each line carries its cell's run label)")
	)
	flag.Parse()

	var telFile io.Writer
	if *telJSONL != "" {
		f, err := os.Create(*telJSONL)
		if err != nil {
			fmt.Fprintln(os.Stderr, "minisweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		telFile = f
	}

	ds := data.New(data.Config{
		NumClasses: *classes,
		TrainSize:  *trainSize,
		ValSize:    *trainSize / 4,
		Resolution: *resolution,
		NoiseStd:   0.25,
		Seed:       *seed,
	})

	groupList := []int{*world}
	if *bnGroups != "" {
		groupList = parseInts(*bnGroups)
	}

	fmt.Println("optimizer,global_batch,bn_group,model_shards,steps,train_acc,val_acc,img_per_s,overlap_eff,reduce_tail_ms")
	for _, opt := range strings.Split(*optimizers, ",") {
		for _, batch := range parseInts(*batches) {
			for _, group := range groupList {
				for _, ms := range parseInts(*shards) {
					cell, err := runOne(ds, *model, opt, *world, ms, batch, group, *epochs, *seed, *larsLR, *rmsLR, telFile)
					if err != nil {
						fmt.Fprintf(os.Stderr, "minisweep: %s batch %d shards %d: %v\n", opt, batch, ms, err)
						os.Exit(1)
					}
					fmt.Printf("%s,%d,%d,%d,%d,%.4f,%.4f,%.1f,%.4f,%.3f\n", opt, batch, group, ms,
						cell.steps, cell.trainAcc, cell.valAcc, cell.imgPerSec, cell.overlap, cell.reduceTailMS)
				}
			}
		}
	}
}

func parseInts(csv string) []int {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "minisweep: bad integer %q\n", s)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

// sweepSchedule is each optimizer's house schedule: the linear scaling rule
// for RMSProp, a roughly batch-independent global LR for the trust-ratio
// optimizers (mirroring the paper's LARS rows, whose per-256 LR halves as
// batch doubles).
func sweepSchedule(opt string, epochs int, larsLR, rmsLR float64) train.Option {
	switch opt {
	case "rmsprop":
		return train.WithLinearScaling(rmsLR, 0.5, train.ExponentialDecay)
	case "lars":
		return train.WithSchedule(schedule.Warmup{Epochs: 1, Inner: schedule.Polynomial{Peak: larsLR, End: 0, TotalEpochs: float64(epochs), Power: 2}})
	case "lamb":
		// LAMB's trust ratio normalizes each update to ‖w‖ scale, so its
		// LR is a per-step fraction of the weight norm — order 0.05.
		return train.WithSchedule(schedule.Warmup{Epochs: 1, Inner: schedule.Polynomial{Peak: 0.05, End: 0, TotalEpochs: float64(epochs), Power: 2}})
	default:
		return train.WithSchedule(schedule.Warmup{Epochs: 0.5, Inner: schedule.Constant(0.1)})
	}
}

// cellResult carries one sweep cell's accuracy and telemetry columns.
type cellResult struct {
	trainAcc, valAcc float64
	steps            int
	imgPerSec        float64
	overlap          float64
	reduceTailMS     float64
}

func runOne(ds *data.Dataset, model, opt string, world, modelShards, globalBatch, bnGroup, epochs int, seed int64, larsLR, rmsLR float64, telFile io.Writer) (cell cellResult, retErr error) {
	perBatch := globalBatch / world
	if perBatch < 1 {
		return cellResult{}, fmt.Errorf("global batch %d too small for %d replicas", globalBatch, world)
	}
	tail := train.NewTrailingAccuracy(4)
	// Every cell runs with telemetry: the summary supplies the throughput
	// and overlap columns; the optional JSONL sink streams per-step records
	// labelled with the cell's coordinates into one shared file.
	var sinks []telemetry.Sink
	if telFile != nil {
		sink := telemetry.NewJSONL(telFile)
		sink.Label = fmt.Sprintf("%s_b%d_bn%d_ms%d", opt, globalBatch, bnGroup, modelShards)
		sinks = append(sinks, sink)
	}
	sess, err := train.New(
		train.WithModel(model),
		// world data replicas × modelShards model shards: the global batch
		// stays world×perBatch, the extra ranks shard parameters, and the
		// img/s / overlap columns report each mesh shape's cost.
		train.WithMesh(world, modelShards),
		train.WithPerReplicaBatch(perBatch),
		train.WithDataset(ds),
		train.WithOptimizer(opt, 1e-5),
		sweepSchedule(opt, epochs, larsLR, rmsLR),
		train.WithBNGroup(bnGroup),
		train.WithLabelSmoothing(0.1),
		train.WithSeed(seed),
		train.WithBNMomentum(0.9),
		train.WithEpochs(epochs),
		train.WithEvalEvery(1<<30), // evaluate once, at the end
		train.WithEvalSamples(64),
		train.WithCallbacks(tail),
		train.WithTelemetry(sinks...),
	)
	if err != nil {
		return cellResult{}, err
	}
	// Each sweep point owns world input-pipeline goroutines and (optionally)
	// a labelled JSONL sink into the shared telemetry file; Close releases
	// the former and flushes the latter, and a flush failure fails the cell.
	defer func() {
		if cerr := sess.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	res, err := sess.Run()
	if err != nil {
		return cellResult{}, err
	}
	cell = cellResult{
		trainAcc: tail.Mean(),
		valAcc:   res.PeakAccuracy,
		steps:    res.StepsRun,
	}
	if res.Telemetry != nil {
		cell.imgPerSec = res.Telemetry.ImgsPerSec()
		cell.overlap = res.Telemetry.OverlapEfficiency()
		// Exposed reduce time per step: what the grad-ready overlap failed to
		// hide inside backward (ROADMAP item 1's before/after metric).
		if res.StepsRun > 0 {
			cell.reduceTailMS = res.Telemetry.Phases[telemetry.PhaseReduceTail].Seconds() * 1e3 / float64(res.StepsRun)
		}
	}
	return cell, nil
}
