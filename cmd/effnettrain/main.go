// Command effnettrain runs real distributed EfficientNet training on
// SynthImageNet with goroutine replicas — the mini-scale path that exercises
// every mechanism of the paper (data parallelism, pluggable collectives with
// bucketed overlapped gradient reduction, LARS or RMSProp, warmup + decay
// schedules, distributed batch norm, bf16 convs, distributed evaluation) —
// through the train.Session API.
//
// Example (the paper's recipe at laptop scale):
//
//	effnettrain -model pico -replicas 8 -per-replica-batch 16 \
//	    -optimizer lars -lr-per-256 40 -warmup-epochs 2 -epochs 8 \
//	    -bn-group 4 -classes 8
//
// Note LARS wants nominal LRs two orders of magnitude above SGD's (its
// layer-wise trust ratios shrink every update); -lr-per-256 40 at global
// batch 64 is a peak global LR of 10.
package main

import (
	"flag"
	"fmt"
	"os"

	"effnetscale/internal/bf16"
	"effnetscale/internal/comm"
	"effnetscale/internal/data"
	"effnetscale/internal/replica"
	"effnetscale/internal/schedule"
	"effnetscale/internal/topology"
	"effnetscale/internal/train"
)

func main() {
	var (
		model      = flag.String("model", "pico", "model variant (pico, nano, micro, b0..b7)")
		replicas   = flag.Int("replicas", 4, "number of data-parallel replicas")
		perBatch   = flag.Int("per-replica-batch", 16, "per-replica batch size")
		opt        = flag.String("optimizer", "lars", "optimizer: sgd, rmsprop, lars, adam, lamb, sm3")
		lrPer256   = flag.Float64("lr-per-256", 40, "learning rate per 256 samples (linear scaling rule; LARS wants ~40, SGD ~0.4)")
		decay      = flag.String("decay", "polynomial", "LR decay: polynomial, exponential, cosine, constant")
		warmup     = flag.Float64("warmup-epochs", 2, "linear warmup epochs")
		epochs     = flag.Int("epochs", 8, "training epochs")
		bnGroup    = flag.Int("bn-group", 1, "distributed batch-norm group size (1 = local)")
		gradAccum  = flag.Int("grad-accum", 1, "gradient-accumulation micro-batches per step")
		classes    = flag.Int("classes", 8, "number of SynthImageNet classes")
		trainSize  = flag.Int("train-size", 2048, "training images")
		resolution = flag.Int("resolution", 32, "image resolution")
		seed       = flag.Int64("seed", 42, "global seed")
		fp32       = flag.Bool("fp32", false, "disable bf16 convolutions")
		wd         = flag.Float64("weight-decay", 1e-5, "L2 weight decay")
		smoothing  = flag.Float64("label-smoothing", 0.1, "label smoothing")
		estimator  = flag.Bool("estimator-eval", false, "use the TPUEstimator-style serialized eval loop instead of the distributed loop")
		evalPer    = flag.Int("eval-samples", 64, "eval samples per replica per evaluation")
		targetAcc  = flag.Float64("target-acc", 0, "stop when eval accuracy reaches this (0 = run all epochs)")
		bnMomentum = flag.Float64("bn-momentum", 0.9, "BN running-stats momentum (TF full-scale default is 0.99; short runs want 0.9)")
		emaDecay   = flag.Float64("ema", 0, "weight-EMA decay (0 = disabled; reference setup evaluates EMA weights)")
		collective = flag.String("collective", "ring", "gradient/BN all-reduce algorithm: ring, tree, torus2d, auto")
		gradBucket = flag.Int("grad-bucket", 0, "gradient bucket size in bytes for overlapped reduction (0 = default 1 MiB)")
		prefetch   = flag.Int("prefetch", replica.DefaultPrefetchDepth, "input-pipeline depth: batches rendered ahead per replica (0 = render synchronously on the training path)")
		saveCkpt   = flag.String("save", "", "write a weights-only checkpoint of replica 0's model here after training")
		bestCkpt   = flag.String("save-best", "", "write a weights-only checkpoint here after every best-so-far evaluation")
		loadCkpt   = flag.String("load", "", "load a weights-only checkpoint into every replica before training")
		snapDir    = flag.String("snapshot-dir", "", "directory for periodic full training-state snapshots (step-<n>.ckpt)")
		snapEvery  = flag.Int("snapshot-every", 0, "write a training-state snapshot every N steps (0 = off; needs -snapshot-dir)")
		keepLast   = flag.Int("keep-last", 3, "retain only the N most recent snapshots (0 = keep all)")
		resume     = flag.String("resume", "", "resume bit-for-bit from a snapshot file or directory (newest readable snapshot wins)")
		killAt     = flag.Int("kill-at-step", 0, "crash the process (exit 3) after this global step — preemption drill for the resume path (0 = off)")
	)
	flag.Parse()

	decayKind, err := train.DecayByName(*decay)
	if err != nil {
		fmt.Fprintln(os.Stderr, "effnettrain:", err)
		os.Exit(2)
	}
	var strategy train.EvalStrategy = train.Distributed{}
	if *estimator {
		strategy = train.Estimator{}
	}
	precision := bf16.DefaultPolicy
	if *fp32 {
		precision = bf16.FP32Policy
	}
	// The torus-based collectives lay the replicas out on a near-square
	// rank grid (a zero Slice); pass an explicit geometry via the train API
	// when modelling a specific slice.
	prov, err := comm.ProviderByName(*collective, topology.Slice{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "effnettrain:", err)
		os.Exit(2)
	}

	opts := []train.Option{
		train.WithModel(*model),
		train.WithWorld(*replicas),
		train.WithPerReplicaBatch(*perBatch),
		train.WithGradAccum(*gradAccum),
		train.WithData(data.Config{
			NumClasses: *classes,
			TrainSize:  *trainSize,
			ValSize:    *trainSize / 4,
			Resolution: *resolution,
			NoiseStd:   0.25,
			Seed:       *seed,
		}),
		train.WithOptimizer(*opt, *wd),
		train.WithLinearScaling(*lrPer256, *warmup, decayKind),
		train.WithBNGroup(*bnGroup),
		train.WithPrecision(precision),
		train.WithLabelSmoothing(*smoothing),
		train.WithSeed(*seed),
		train.WithDropout(train.ModelDefaultRate, train.ModelDefaultRate),
		train.WithBNMomentum(*bnMomentum),
		train.WithEpochs(*epochs),
		train.WithEvalSamples(*evalPer),
		train.WithEvalStrategy(strategy),
		train.WithTarget(*targetAcc),
		train.WithCollective(prov),
		train.WithCallbacks(train.Progress(func(s string) { fmt.Println(s) })),
	}
	if *gradBucket != 0 {
		opts = append(opts, train.WithGradBuckets(*gradBucket))
	}
	if *prefetch <= 0 {
		opts = append(opts, train.WithoutPrefetch())
	} else {
		opts = append(opts, train.WithPrefetch(*prefetch))
	}
	if *emaDecay > 0 {
		opts = append(opts, train.WithEMA(*emaDecay))
	}
	if *bestCkpt != "" {
		opts = append(opts, train.WithBestCheckpoint(*bestCkpt))
	}
	if *snapDir != "" {
		opts = append(opts, train.WithSnapshotDir(*snapDir), train.WithKeepLast(*keepLast))
	}
	if *snapEvery > 0 {
		opts = append(opts, train.WithSnapshotEvery(*snapEvery))
	}
	if *resume != "" {
		opts = append(opts, train.WithResume(*resume))
	}
	if *killAt > 0 {
		opts = append(opts, train.WithCallbacks(train.Funcs{
			Step: func(s *train.Session, step int, _ replica.StepResult) {
				if step >= *killAt {
					// Simulated preemption: no flushing, no goodbyes — the
					// resume path must cope with whatever snapshots already
					// made it to disk.
					fmt.Printf("effnettrain: killed at step %d (preemption drill)\n", step)
					os.Exit(3)
				}
			},
		}))
	}

	sess, err := train.New(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "effnettrain:", err)
		os.Exit(1)
	}
	defer sess.Close()
	if *loadCkpt != "" {
		if err := sess.LoadCheckpoint(*loadCkpt); err != nil {
			fmt.Fprintln(os.Stderr, "effnettrain:", err)
			os.Exit(1)
		}
		fmt.Printf("effnettrain: restored %s into %d replicas\n", *loadCkpt, *replicas)
	}
	if path, step, ok := sess.ResumedFrom(); ok {
		fmt.Printf("effnettrain: resumed from %s at step %d\n", path, step)
	}

	fmt.Printf("effnettrain: %s on %d replicas, global batch %d, %s + %s decay (peak LR %.3f), BN group %d, %s all-reduce, %s eval, prefetch %d\n",
		*model, *replicas, sess.GlobalBatch(), *opt, *decay, schedule.ScaledLR(*lrPer256, sess.GlobalBatch()), *bnGroup, sess.Engine().Algorithm(), strategy.Name(), sess.Engine().Prefetching())

	res, err := sess.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "effnettrain:", err)
		os.Exit(1)
	}

	fmt.Printf("\npeak top-1 %.4f at %v (total %v, %d steps, eval wall %v)\n",
		res.PeakAccuracy, res.TimeToPeak.Round(1e6), res.TotalTime.Round(1e6), res.StepsRun, res.EvalWallTime.Round(1e6))
	for _, cerr := range res.CheckpointErrors {
		fmt.Fprintln(os.Stderr, "effnettrain: checkpoint:", cerr)
	}
	if sync := sess.Engine().WeightsInSync(); sync != "" {
		fmt.Fprintf(os.Stderr, "effnettrain: WARNING replicas out of sync at %s\n", sync)
		os.Exit(1)
	}
	if *saveCkpt != "" {
		if err := sess.SaveCheckpoint(*saveCkpt); err != nil {
			fmt.Fprintln(os.Stderr, "effnettrain:", err)
			os.Exit(1)
		}
		fmt.Println("effnettrain: checkpoint written to", *saveCkpt)
	}
}
