// Command effnettrain runs real distributed EfficientNet training on
// SynthImageNet with goroutine replicas — the mini-scale path that exercises
// every mechanism of the paper (data parallelism, pluggable collectives with
// bucketed overlapped gradient reduction, LARS or RMSProp, warmup + decay
// schedules, distributed batch norm, bf16 convs, distributed evaluation) —
// through the train.Session API.
//
// Example (the paper's recipe at laptop scale):
//
//	effnettrain -model pico -replicas 8 -per-replica-batch 16 \
//	    -optimizer lars -lr-per-256 40 -warmup-epochs 2 -epochs 8 \
//	    -bn-group 4 -classes 8
//
// Note LARS wants nominal LRs two orders of magnitude above SGD's (its
// layer-wise trust ratios shrink every update); -lr-per-256 40 at global
// batch 64 is a peak global LR of 10.
//
// The -telemetry-* flags attach the step-phase telemetry subsystem:
// -telemetry-console prints live per-epoch throughput/overlap/ETA lines,
// -telemetry-jsonl and -telemetry-csv stream per-step records to files, and
// any of them makes the run print its aggregate summary (phase shares,
// comm-overlap efficiency, starvation, snapshot latency) at the end.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"effnetscale/internal/bf16"
	"effnetscale/internal/comm"
	"effnetscale/internal/data"
	"effnetscale/internal/replica"
	"effnetscale/internal/schedule"
	"effnetscale/internal/telemetry"
	"effnetscale/internal/topology"
	"effnetscale/internal/train"
)

func main() {
	var (
		model      = flag.String("model", "pico", "model variant (pico, nano, micro, b0..b7)")
		replicas   = flag.Int("replicas", 4, "number of data-parallel replicas")
		shards     = flag.Int("model-shards", 1, "model-parallel shards per replica group: lays -replicas ranks out as a (replicas/shards)×shards mesh (must divide -replicas; 1 = pure data parallelism)")
		perBatch   = flag.Int("per-replica-batch", 16, "per-replica batch size")
		opt        = flag.String("optimizer", "lars", "optimizer: sgd, rmsprop, lars, adam, lamb, sm3")
		lrPer256   = flag.Float64("lr-per-256", 40, "learning rate per 256 samples (linear scaling rule; LARS wants ~40, SGD ~0.4)")
		decay      = flag.String("decay", "polynomial", "LR decay: polynomial, exponential, cosine, constant")
		warmup     = flag.Float64("warmup-epochs", 2, "linear warmup epochs")
		epochs     = flag.Int("epochs", 8, "training epochs")
		bnGroup    = flag.Int("bn-group", 1, "distributed batch-norm group size (1 = local)")
		gradAccum  = flag.Int("grad-accum", 1, "gradient-accumulation micro-batches per step")
		classes    = flag.Int("classes", 8, "number of SynthImageNet classes")
		trainSize  = flag.Int("train-size", 2048, "training images")
		resolution = flag.Int("resolution", 32, "image resolution")
		seed       = flag.Int64("seed", 42, "global seed")
		fp32       = flag.Bool("fp32", false, "disable bf16 convolutions")
		wd         = flag.Float64("weight-decay", 1e-5, "L2 weight decay")
		smoothing  = flag.Float64("label-smoothing", 0.1, "label smoothing")
		estimator  = flag.Bool("estimator-eval", false, "use the TPUEstimator-style serialized eval loop instead of the distributed loop")
		evalPer    = flag.Int("eval-samples", 64, "eval samples per replica per evaluation")
		targetAcc  = flag.Float64("target-acc", 0, "stop when eval accuracy reaches this (0 = run all epochs)")
		bnMomentum = flag.Float64("bn-momentum", 0.9, "BN running-stats momentum (TF full-scale default is 0.99; short runs want 0.9)")
		emaDecay   = flag.Float64("ema", 0, "weight-EMA decay (0 = disabled; reference setup evaluates EMA weights)")
		collective = flag.String("collective", "ring", "gradient/BN all-reduce algorithm: ring, tree, torus2d, auto")
		gradBucket = flag.Int("grad-bucket", 0, "gradient bucket size in bytes for overlapped reduction (0 = default 32 KiB)")
		noOverlap  = flag.Bool("no-backward-overlap", false, "dispatch gradient buckets only after backward completes (bit-identical A/B baseline for the in-backward overlap)")
		prefetch   = flag.Int("prefetch", replica.DefaultPrefetchDepth, "input-pipeline depth: batches rendered ahead per replica (0 = render synchronously on the training path)")
		saveCkpt   = flag.String("save", "", "write a weights-only checkpoint of replica 0's model here after training")
		bestCkpt   = flag.String("save-best", "", "write a weights-only checkpoint here after every best-so-far evaluation")
		loadCkpt   = flag.String("load", "", "load a weights-only checkpoint into every replica before training")
		snapDir    = flag.String("snapshot-dir", "", "directory for periodic full training-state snapshots (step-<n>.ckpt)")
		snapEvery  = flag.Int("snapshot-every", 0, "write a training-state snapshot every N steps (0 = off; needs -snapshot-dir)")
		keepLast   = flag.Int("keep-last", 3, "retain only the N most recent snapshots (0 = keep all)")
		resume     = flag.String("resume", "", "resume bit-for-bit from a snapshot file or directory (newest readable snapshot wins)")
		elastic    = flag.Bool("elastic", false, "with -resume: reshard the snapshot to this run's -replicas (global batch preserved; -per-replica-batch and -grad-accum become factorization hints)")
		killAt     = flag.Int("kill-at-step", 0, "crash the process (exit 3) after this global step — preemption drill for the resume path (0 = off)")
		telJSONL   = flag.String("telemetry-jsonl", "", "stream per-step/epoch/eval telemetry records to this JSONL file")
		telCSV     = flag.String("telemetry-csv", "", "stream per-step telemetry rows to this CSV file")
		telConsole = flag.Bool("telemetry-console", false, "print a live per-epoch telemetry summary (img/s, step phases, overlap, ETA)")
	)
	flag.Parse()

	decayKind, err := train.DecayByName(*decay)
	if err != nil {
		fmt.Fprintln(os.Stderr, "effnettrain:", err)
		os.Exit(2)
	}
	var strategy train.EvalStrategy = train.Distributed{}
	if *estimator {
		strategy = train.Estimator{}
	}
	precision := bf16.DefaultPolicy
	if *fp32 {
		precision = bf16.FP32Policy
	}
	// The torus-based collectives lay the replicas out on a near-square
	// rank grid (a zero Slice); pass an explicit geometry via the train API
	// when modelling a specific slice.
	prov, err := comm.ProviderByName(*collective, topology.Slice{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "effnettrain:", err)
		os.Exit(2)
	}

	if *shards < 1 || *replicas%*shards != 0 {
		fmt.Fprintf(os.Stderr, "effnettrain: -model-shards %d must divide -replicas %d\n", *shards, *replicas)
		os.Exit(2)
	}

	opts := []train.Option{
		train.WithModel(*model),
		train.WithWorld(*replicas),
		// The mesh lays the same ranks out as data × model axes; with
		// -model-shards 1 this is WithWorld(replicas), bit for bit.
		train.WithMesh(*replicas / *shards, *shards),
		train.WithPerReplicaBatch(*perBatch),
		train.WithGradAccum(*gradAccum),
		train.WithData(data.Config{
			NumClasses: *classes,
			TrainSize:  *trainSize,
			ValSize:    *trainSize / 4,
			Resolution: *resolution,
			NoiseStd:   0.25,
			Seed:       *seed,
		}),
		train.WithOptimizer(*opt, *wd),
		train.WithLinearScaling(*lrPer256, *warmup, decayKind),
		train.WithBNGroup(*bnGroup),
		train.WithPrecision(precision),
		train.WithLabelSmoothing(*smoothing),
		train.WithSeed(*seed),
		train.WithDropout(train.ModelDefaultRate, train.ModelDefaultRate),
		train.WithBNMomentum(*bnMomentum),
		train.WithEpochs(*epochs),
		train.WithEvalSamples(*evalPer),
		train.WithEvalStrategy(strategy),
		train.WithTarget(*targetAcc),
		train.WithCollective(prov),
		train.WithCallbacks(train.Progress(func(s string) { fmt.Println(s) })),
	}
	// Telemetry: any -telemetry-* flag attaches the recorder; file sinks are
	// flushed by Session.Close and the files closed on exit.
	var sinks []telemetry.Sink
	telemetryOn := *telConsole
	for _, f := range []struct {
		path string
		mk   func(io.Writer) telemetry.Sink
	}{
		{*telJSONL, func(w io.Writer) telemetry.Sink { return telemetry.NewJSONL(w) }},
		{*telCSV, func(w io.Writer) telemetry.Sink { return telemetry.NewCSV(w) }},
	} {
		if f.path == "" {
			continue
		}
		file, err := os.Create(f.path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "effnettrain:", err)
			os.Exit(1)
		}
		defer file.Close()
		sinks = append(sinks, f.mk(file))
		telemetryOn = true
	}
	if *telConsole {
		sinks = append(sinks, telemetry.NewConsole(func(s string) { fmt.Println(s) }))
	}
	if telemetryOn {
		opts = append(opts, train.WithTelemetry(sinks...))
	}
	if *gradBucket != 0 {
		opts = append(opts, train.WithGradBuckets(*gradBucket))
	}
	if *noOverlap {
		opts = append(opts, train.WithoutBackwardOverlap())
	}
	if *prefetch <= 0 {
		opts = append(opts, train.WithoutPrefetch())
	} else {
		opts = append(opts, train.WithPrefetch(*prefetch))
	}
	if *emaDecay > 0 {
		opts = append(opts, train.WithEMA(*emaDecay))
	}
	if *bestCkpt != "" {
		opts = append(opts, train.WithBestCheckpoint(*bestCkpt))
	}
	if *snapDir != "" {
		opts = append(opts, train.WithSnapshotDir(*snapDir), train.WithKeepLast(*keepLast))
	}
	if *snapEvery > 0 {
		opts = append(opts, train.WithSnapshotEvery(*snapEvery))
	}
	if *elastic && *resume == "" {
		fmt.Fprintln(os.Stderr, "effnettrain: -elastic needs -resume (there is no snapshot to reshard)")
		os.Exit(2)
	}
	if *resume != "" {
		if *elastic {
			opts = append(opts, train.WithElasticResume(*resume))
		} else {
			opts = append(opts, train.WithResume(*resume))
		}
	}
	if *killAt > 0 {
		opts = append(opts, train.WithCallbacks(train.Funcs{
			Step: func(s *train.Session, step int, _ replica.StepResult) {
				if step >= *killAt {
					// Simulated preemption: no flushing, no goodbyes — the
					// resume path must cope with whatever snapshots already
					// made it to disk.
					fmt.Printf("effnettrain: killed at step %d (preemption drill)\n", step)
					os.Exit(3)
				}
			},
		}))
	}

	sess, err := train.New(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "effnettrain:", err)
		os.Exit(1)
	}
	defer closeSession(sess)
	// die flushes the session (telemetry sinks included — os.Exit skips
	// defers, and the telemetry of a failed run is exactly what explains
	// it) before exiting non-zero.
	die := func(args ...any) {
		fmt.Fprintln(os.Stderr, append([]any{"effnettrain:"}, args...)...)
		closeSession(sess)
		os.Exit(1)
	}
	if *loadCkpt != "" {
		if err := sess.LoadCheckpoint(*loadCkpt); err != nil {
			die(err)
		}
		fmt.Printf("effnettrain: restored %s into %d replicas\n", *loadCkpt, *replicas)
	}
	if path, step, ok := sess.ResumedFrom(); ok {
		fmt.Printf("effnettrain: resumed from %s at step %d\n", path, step)
	}

	fmt.Printf("effnettrain: %s on %d replicas (mesh %s), global batch %d, %s + %s decay (peak LR %.3f), BN group %d, %s all-reduce, %s eval, prefetch %d\n",
		*model, *replicas, sess.Engine().Mesh(), sess.GlobalBatch(), *opt, *decay, schedule.ScaledLR(*lrPer256, sess.GlobalBatch()), *bnGroup, sess.Engine().Algorithm(), strategy.Name(), sess.Engine().Prefetching())

	res, err := sess.Run()
	if err != nil {
		die(err)
	}

	fmt.Printf("\npeak top-1 %.4f at %v (total %v, %d steps, eval wall %v)\n",
		res.PeakAccuracy, res.TimeToPeak.Round(1e6), res.TotalTime.Round(1e6), res.StepsRun, res.EvalWallTime.Round(1e6))
	if res.Telemetry != nil {
		fmt.Println(res.Telemetry)
	}
	for _, cerr := range res.CheckpointErrors {
		fmt.Fprintln(os.Stderr, "effnettrain: checkpoint:", cerr)
	}
	if sync := sess.Engine().WeightsInSync(); sync != "" {
		die(fmt.Sprintf("WARNING replicas out of sync at %s", sync))
	}
	if *saveCkpt != "" {
		if err := sess.SaveCheckpoint(*saveCkpt); err != nil {
			die(err)
		}
		fmt.Println("effnettrain: checkpoint written to", *saveCkpt)
	}
}

// closeSession closes sess (idempotent) and surfaces telemetry sink flush
// failures, which would otherwise vanish with the run's exit status intact.
func closeSession(sess *train.Session) {
	if err := sess.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "effnettrain:", err)
	}
}
