// Command effnetserve serves predictions from a trained EfficientNet
// checkpoint over HTTP, with dynamic request batching — the serving-side
// dual of the paper's large-batch training insight: concurrent requests
// coalesce into one batched tape-free forward, amortizing per-forward fixed
// costs (and, on multi-core hosts, engaging the batch-parallel convolution
// kernels).
//
// Boot from a weights-only checkpoint or from a training snapshot
// directory; the latter is watched, and newer snapshots hot-swap in without
// dropping in-flight requests:
//
//	effnetserve -snapshot-dir runs/exp1/snapshots -addr :8080
//
// Endpoints: POST /predict ({"pixels": [...]} flattened 3×res×res NCHW),
// GET /healthz, GET /stats (batch-size histogram, queue depth, p50/p95/p99
// latency from the serve telemetry).
//
// The load-generator mode benchmarks batching instead of asserting it:
//
//	effnetserve -loadgen -duration 5s -clients 32
//
// drives saturating synthetic traffic through a batch-size-1 baseline and
// the batched configuration, printing the latency-percentile table for each
// and the measured speedup.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"effnetscale/internal/bf16"
	"effnetscale/internal/efficientnet"
	"effnetscale/internal/serve"
)

func main() {
	var (
		checkpointPath = flag.String("checkpoint", "", "weights-only checkpoint to serve (exclusive with -snapshot-dir)")
		snapshotDir    = flag.String("snapshot-dir", "", "training snapshot directory to serve; watched for hot reload")
		poll           = flag.Duration("poll", 2*time.Second, "snapshot-dir polling interval for hot reload (<0 disables)")
		addr           = flag.String("addr", ":8080", "HTTP listen address")
		maxBatch       = flag.Int("max-batch", 32, "max requests coalesced into one forward")
		maxWait        = flag.Duration("max-wait", 2*time.Millisecond, "max time a request waits for its batch to fill")
		workers        = flag.Int("workers", 1, "concurrent inference workers")
		queueCap       = flag.Int("queue-cap", 0, "admission queue bound before load shedding (0 = 4×max-batch)")
		useBF16        = flag.Bool("bf16", false, "run inference with bf16 convolutions (emulated; fp32 is faster off-TPU)")
		jsonlPath      = flag.String("telemetry-jsonl", "", "stream per-batch serve telemetry (kind serve_batch) to this JSONL file")
		runLabel       = flag.String("run", "", "label stamped into telemetry lines as \"run\"")

		loadgen  = flag.Bool("loadgen", false, "benchmark mode: drive synthetic traffic, print the latency table, exit")
		duration = flag.Duration("duration", 3*time.Second, "loadgen: measurement window per configuration")
		clients  = flag.Int("clients", 0, "loadgen: concurrent closed-loop clients (0 = 2×max-batch, so batches can fill at saturation)")
		qps      = flag.Float64("qps", 0, "loadgen: target request rate (0 = unpaced, saturate)")

		model      = flag.String("model", "pico", "loadgen without a checkpoint: model variant to serve with random weights")
		classes    = flag.Int("classes", 8, "loadgen without a checkpoint: class count")
		resolution = flag.Int("resolution", 32, "loadgen without a checkpoint: image resolution")
		seed       = flag.Int64("seed", 42, "loadgen: synthetic input seed")
	)
	flag.Parse()

	precision := bf16.FP32Policy
	if *useBF16 {
		precision = bf16.DefaultPolicy
	}

	provider, cleanup, err := buildProvider(*checkpointPath, *snapshotDir, *poll, *model, *classes, *resolution, *loadgen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "effnetserve:", err)
		os.Exit(2)
	}
	defer cleanup()

	var sinks []serve.Sink
	if *jsonlPath != "" {
		f, err := os.Create(*jsonlPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "effnetserve:", err)
			os.Exit(2)
		}
		defer f.Close()
		sink := serve.NewJSONL(f)
		sink.Label = *runLabel
		sinks = append(sinks, sink)
	}

	cfg := serve.Config{
		Provider:  provider,
		MaxBatch:  *maxBatch,
		MaxWait:   *maxWait,
		Workers:   *workers,
		QueueCap:  *queueCap,
		Precision: precision,
		Sinks:     sinks,
	}

	if *loadgen {
		if err := runLoadgen(cfg, *duration, *clients, *qps, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "effnetserve:", err)
			os.Exit(1)
		}
		return
	}
	if err := runServer(cfg, *addr, provider); err != nil {
		fmt.Fprintln(os.Stderr, "effnetserve:", err)
		os.Exit(1)
	}
}

// buildProvider resolves the weights source: a checkpoint file, a watched
// snapshot directory, or (loadgen only) a randomly initialized model so the
// batching benchmark needs no training run first.
func buildProvider(checkpointPath, snapshotDir string, poll time.Duration, model string, classes, resolution int, loadgen bool) (serve.ModelProvider, func(), error) {
	if checkpointPath != "" && snapshotDir != "" {
		return nil, nil, errors.New("set only one of -checkpoint and -snapshot-dir")
	}
	if checkpointPath == "" && snapshotDir == "" {
		if !loadgen {
			return nil, nil, errors.New("need -checkpoint or -snapshot-dir (or -loadgen for a synthetic benchmark)")
		}
		cfg, ok := efficientnet.ConfigByName(model, classes)
		if !ok {
			return nil, nil, fmt.Errorf("unknown model %q", model)
		}
		cfg.Resolution = resolution
		m := efficientnet.New(rand.New(rand.NewSource(1)), cfg)
		return serve.Static{M: m, Tag: model + "-randinit"}, func() {}, nil
	}
	l, err := serve.NewLoader(serve.LoaderConfig{
		WeightsPath: checkpointPath,
		SnapshotDir: snapshotDir,
		Poll:        poll,
		OnSwap:      func(tag string) { fmt.Printf("effnetserve: hot-reloaded %s\n", tag) },
		OnError:     func(err error) { fmt.Fprintln(os.Stderr, "effnetserve: reload:", err) },
	})
	if err != nil {
		return nil, nil, err
	}
	return l, l.Close, nil
}

// --- HTTP server -------------------------------------------------------------

type predictRequest struct {
	Pixels []float32 `json:"pixels"`
}

type predictResponse struct {
	Class     int       `json:"class"`
	Logits    []float32 `json:"logits"`
	Model     string    `json:"model"`
	BatchSize int       `json:"batch_size"`
	LatencyMS float64   `json:"latency_ms"`
}

func runServer(cfg serve.Config, addr string, provider serve.ModelProvider) error {
	b, err := serve.NewBatcher(cfg)
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		var req predictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		p, err := b.Predict(req.Pixels)
		switch {
		case errors.Is(err, serve.ErrOverloaded):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		case errors.Is(err, serve.ErrClosed):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, predictResponse{
			Class:     p.Class,
			Logits:    p.Logits,
			Model:     p.Model,
			BatchSize: p.BatchSize,
			LatencyMS: float64(p.Latency) / 1e6,
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_, tag := provider.Current()
		writeJSON(w, map[string]any{"status": "ok", "model": tag})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		_, tag := provider.Current()
		stats := struct {
			serve.StatsSnapshot
			Model   string `json:"model"`
			Reloads int64  `json:"reloads"`
		}{StatsSnapshot: b.Stats(), Model: tag}
		if l, ok := provider.(*serve.Loader); ok {
			stats.Reloads = l.Reloads()
		}
		writeJSON(w, stats)
	})

	srv := &http.Server{Addr: addr, Handler: mux}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("effnetserve: serving res %d, %d classes on %s (max-batch %d, max-wait %v)\n",
			b.Resolution(), b.Classes(), addr, cfg.MaxBatch, cfg.MaxWait)
		errc <- srv.ListenAndServe()
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		b.Close()
		return err
	case s := <-sig:
		fmt.Printf("effnetserve: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := srv.Shutdown(ctx)
		if cerr := b.Close(); err == nil {
			err = cerr
		}
		return err
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// --- Load generator ----------------------------------------------------------

// genResult is one configuration's measurement.
type genResult struct {
	name   string
	served int64
	window time.Duration
	stats  serve.StatsSnapshot
}

func (g genResult) throughput() float64 { return float64(g.served) / g.window.Seconds() }

// runLoadgen measures a batch-size-1 baseline and the batched configuration
// under identical traffic, printing the latency-percentile table from the
// serve telemetry and the measured speedup.
func runLoadgen(cfg serve.Config, window time.Duration, clients int, qps float64, seed int64) error {
	if clients == 0 {
		// Closed-loop clients bound the achievable batch size: with fewer
		// clients than MaxBatch a batch can never fill and every flush waits
		// out the MaxWait deadline. Default to enough clients to saturate.
		clients = 2 * cfg.MaxBatch
		if clients < 32 {
			clients = 32
		}
	}
	if clients < 1 {
		return fmt.Errorf("loadgen needs at least one client, got %d", clients)
	}
	baseline := cfg
	baseline.MaxBatch = 1
	baseline.QueueCap = 0 // re-derive from MaxBatch
	results := make([]genResult, 0, 2)
	for _, c := range []struct {
		name string
		cfg  serve.Config
	}{
		{"batch=1", baseline},
		{fmt.Sprintf("batch=%d", cfg.MaxBatch), cfg},
	} {
		r, err := drive(c.name, c.cfg, window, clients, qps, seed)
		if err != nil {
			return err
		}
		results = append(results, r)
	}

	fmt.Printf("\n%-10s %10s %10s %9s %9s %9s %10s %8s\n",
		"config", "img/s", "requests", "p50 ms", "p95 ms", "p99 ms", "avg batch", "shed")
	for _, r := range results {
		fmt.Printf("%-10s %10.1f %10d %9.2f %9.2f %9.2f %10.2f %8d\n",
			r.name, r.throughput(), r.served,
			r.stats.P50MS, r.stats.P95MS, r.stats.P99MS, r.stats.AvgBatch, r.stats.Dropped)
	}
	speedup := results[1].throughput() / results[0].throughput()
	fmt.Printf("\nbatched throughput %.2fx batch-size-1 (%d closed-loop clients", speedup, clients)
	if qps > 0 {
		fmt.Printf(", paced at %.0f qps", qps)
	}
	fmt.Printf(")\n")
	fmt.Println("note: the batching win scales with cores — tensor.Conv2D parallelizes over the batch")
	fmt.Println("dimension, so a coalesced forward engages every core where batch-1 forwards cannot.")
	return nil
}

// drive runs one configuration: clients issue requests closed-loop (optionally
// paced to a global QPS target) for the window, after a short warmup.
func drive(name string, cfg serve.Config, window time.Duration, clients int, qps float64, seed int64) (genResult, error) {
	b, err := serve.NewBatcher(cfg)
	if err != nil {
		return genResult{}, err
	}
	defer b.Close()

	inputs := make([][]float32, clients)
	rng := rand.New(rand.NewSource(seed))
	for i := range inputs {
		px := make([]float32, b.SampleLen())
		for j := range px {
			px[j] = rng.Float32()
		}
		inputs[i] = px
	}

	// Pacing: a token bucket fed at the QPS target, shared by all clients.
	// Without -qps the bucket is nil and clients run flat out (saturation).
	var tokens chan struct{}
	pacerStop := make(chan struct{})
	if qps > 0 {
		tokens = make(chan struct{}, clients)
		interval := time.Duration(float64(time.Second) / qps)
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-pacerStop:
					return
				case <-t.C:
					select {
					case tokens <- struct{}{}:
					default: // clients saturated; drop the token, not the pace
					}
				}
			}
		}()
	}

	warmup := window / 10
	if warmup > time.Second {
		warmup = time.Second
	}
	var started atomic.Bool // excludes warmup traffic from the count
	var served atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if tokens != nil {
					select {
					case <-tokens:
					case <-stop:
						return
					}
				}
				_, err := b.Predict(inputs[c])
				switch {
				case err == nil:
					if started.Load() {
						served.Add(1)
					}
				case errors.Is(err, serve.ErrOverloaded):
					// Saturation is the point; back off briefly.
					time.Sleep(100 * time.Microsecond)
				default:
					return
				}
			}
		}(c)
	}
	time.Sleep(warmup)
	started.Store(true)
	t0 := time.Now()
	time.Sleep(window)
	measured := time.Since(t0)
	close(stop)
	close(pacerStop)
	wg.Wait()
	stats := b.Stats()
	fmt.Printf("%s: %d requests in %v\n", name, served.Load(), measured.Round(time.Millisecond))
	return genResult{name: name, served: served.Load(), window: measured, stats: stats}, nil
}
